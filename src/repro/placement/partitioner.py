"""Partition computations and the partition_set service."""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalitySet


@dataclass(frozen=True)
class PartitionScheme:
    """Catalog metadata describing how a replica is partitioned.

    ``key_name`` is what the query scheduler matches against join keys
    (e.g. ``"l_orderkey"``); two sets co-partition when their schemes share
    kind, key name semantics, and partition count.
    """

    kind: str
    key_name: str
    num_partitions: int

    def co_partitioned_with(self, other: "PartitionScheme | None") -> bool:
        if other is None:
            return False
        return (
            self.kind == other.kind
            and self.num_partitions == other.num_partitions
        )


class PartitionComp:
    """The paper's partition computation: extract a key, map it to a partition."""

    kind = "hash"

    def __init__(
        self,
        key_fn: "typing.Callable[[object], object]",
        num_partitions: int,
        key_name: str = "key",
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.key_fn = key_fn
        self.num_partitions = num_partitions
        self.key_name = key_name

    def key_of(self, record: object) -> object:
        return self.key_fn(record)

    def partition_of(self, record: object) -> int:
        return stable_hash(self.key_fn(record)) % self.num_partitions

    def partition_of_key(self, key: object) -> int:
        return stable_hash(key) % self.num_partitions

    def node_of(self, record: object, num_nodes: int) -> int:
        return self.partition_of(record) % num_nodes

    def scheme(self) -> PartitionScheme:
        return PartitionScheme(
            kind=self.kind, key_name=self.key_name, num_partitions=self.num_partitions
        )


class HashPartitioner(PartitionComp):
    """Alias with the conventional name."""


class RangePartitioner(PartitionComp):
    """Partition by sorted key ranges (boundaries given explicitly)."""

    kind = "range"

    def __init__(
        self,
        key_fn: "typing.Callable[[object], object]",
        boundaries: list,
        key_name: str = "key",
    ) -> None:
        super().__init__(key_fn, len(boundaries) + 1, key_name)
        self.boundaries = list(boundaries)

    def partition_of_key(self, key: object) -> int:
        for index, boundary in enumerate(self.boundaries):
            if key < boundary:
                return index
        return len(self.boundaries)

    def partition_of(self, record: object) -> int:
        return self.partition_of_key(self.key_fn(record))


class RoundRobinPartitioner(PartitionComp):
    """Spray records evenly regardless of key (random dispatch)."""

    kind = "roundrobin"

    def __init__(self, num_partitions: int) -> None:
        super().__init__(lambda record: None, num_partitions, key_name="")
        self._cursor = 0

    def partition_of(self, record: object) -> int:
        partition = self._cursor % self.num_partitions
        self._cursor += 1
        return partition


def partition_set(
    source: "LocalitySet",
    target: "LocalitySet",
    partitioner: PartitionComp,
) -> "LocalitySet":
    """Repartition ``source`` into ``target`` (paper Sec. 7 code example).

    Scans the source through the sequential read service, routes every
    record by the partition computation, and writes it to the partition's
    home node through the sequential write service; records that move
    across nodes charge the sender's network link.  The target's partition
    scheme is registered in the statistics database.
    """
    from repro.services.sequential import SequentialWriter, make_shard_iterators

    cluster = source.cluster
    num_nodes = len(target.shards)
    node_ids = sorted(target.shards)
    writers = {
        node_id: SequentialWriter(target.shards[node_id])
        for node_id in node_ids
    }
    for writer in writers.values():
        writer.attach()
    try:
        for node_id in sorted(source.shards):
            shard = source.shards[node_id]
            pending_network = 0
            for iterator in make_shard_iterators(shard):
                for page in iterator:
                    for record in page.records:
                        shard.node.cpu.per_object(1)
                        partition = partitioner.partition_of(record)
                        dest = node_ids[partition % num_nodes]
                        writers[dest].add_object(record, source.object_bytes)
                        if dest != node_id:
                            pending_network += source.object_bytes
            if pending_network:
                shard.node.network.transfer(
                    pending_network,
                    num_messages=max(1, pending_network // (4 << 20)),
                )
    finally:
        for writer in writers.values():
            writer.flush()
            writer.close()
    target.partition_scheme = partitioner.scheme()
    target.partitioner = partitioner
    cluster.manager.update_statistics(target)
    cluster.manager.update_statistics(source)
    cluster.barrier()
    return target
