"""Data placement: partitioning, heterogeneous replication, and recovery
(paper Sec. 7).

Replication does double duty in Pangea: the replicas of a locality set may
use *different* partitionings, so they serve both failure recovery and
computational efficiency (co-partitioned joins), without storing extra
copies beyond the replication factor.
"""

from repro.placement.partitioner import (
    HashPartitioner,
    PartitionComp,
    PartitionScheme,
    RangePartitioner,
    RoundRobinPartitioner,
    partition_set,
)
from repro.placement.replication import (
    ReplicationGroup,
    expected_colliding_objects,
    expected_unsafe_ratio,
    register_replica,
)
from repro.placement.recovery import RecoveryReport, recover_node
from repro.placement.rsafety import (
    ensure_r_safety,
    object_node_spread,
    recover_concurrent_failures,
)

__all__ = [
    "PartitionScheme",
    "PartitionComp",
    "HashPartitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "partition_set",
    "ReplicationGroup",
    "register_replica",
    "expected_colliding_objects",
    "expected_unsafe_ratio",
    "RecoveryReport",
    "recover_node",
    "ensure_r_safety",
    "object_node_spread",
    "recover_concurrent_failures",
]
