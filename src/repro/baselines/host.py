"""A bare simulated machine for baselines (no Pangea components)."""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.devices import DiskArray
from repro.sim.profiles import MachineProfile


class BaselineHost:
    """Clock + CPU + disks + network built from a machine profile.

    The same hardware a :class:`~repro.cluster.node.WorkerNode` gets, so
    baseline-vs-Pangea comparisons differ only in software architecture.
    """

    def __init__(self, profile: MachineProfile, host_id: int = 0) -> None:
        self.profile = profile
        self.host_id = host_id
        self.clock = SimClock()
        self.cpu = profile.build_cpu()
        self.cpu.clock = self.clock
        disks = profile.build_disks(host_id)
        for disk in disks:
            disk.clock = self.clock
        self.disks = DiskArray(disks)
        self.network = profile.build_network()
        self.network.clock = self.clock

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def memory_bytes(self) -> int:
        return self.profile.memory_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineHost(id={self.host_id}, profile={self.profile.name})"
