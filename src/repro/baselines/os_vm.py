"""OS virtual memory baseline (paper Fig. 7 and Tab. 4 substrate).

Models anonymous memory managed by the kernel: 4KB pages, a global LRU
with *page stealing* (kswapd evicts extra pages even without direct
demand — the paper measures 2.5× the page-out volume Pangea generates for
the same scan), and swap I/O in small clustered chunks rather than
Pangea's 64MB pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.host import BaselineHost
from repro.sim.devices import KB


@dataclass
class VmStats:
    bytes_paged_out: int = 0
    bytes_paged_in: int = 0

    def reset(self) -> None:
        self.bytes_paged_out = 0
        self.bytes_paged_in = 0


class OsVirtualMemory:
    """malloc/free plus sequential and random access over kernel paging."""

    def __init__(
        self,
        host: BaselineHost,
        memory_bytes: int | None = None,
        swap_io_bytes: int = 16 * KB,
        steal_factor: float = 2.5,
        malloc_seconds: float = 120e-9,
        free_seconds: float = 90e-9,
    ) -> None:
        self.host = host
        self.memory_bytes = memory_bytes or host.memory_bytes
        self.swap_io_bytes = swap_io_bytes
        self.steal_factor = steal_factor
        self.malloc_seconds = malloc_seconds
        self.free_seconds = free_seconds
        self.data_bytes = 0
        #: bytes currently resident (the rest live in swap)
        self.resident_bytes = 0
        self.stats = VmStats()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    @property
    def overflow_bytes(self) -> int:
        return max(0, self.data_bytes - self.memory_bytes)

    def malloc_objects(self, count: int, obj_bytes: int, workers: int = 1) -> None:
        """Allocate and first-touch ``count`` objects of ``obj_bytes``."""
        if count < 0 or obj_bytes <= 0:
            raise ValueError("need non-negative count and positive object size")
        total = count * obj_bytes
        self.host.cpu.parallel(count * self.malloc_seconds, workers)
        self.host.cpu.memcpy(total, workers)
        self.data_bytes += total
        self.resident_bytes = min(self.memory_bytes, self.resident_bytes + total)
        # Growing past RAM swaps out the overflow, with page stealing
        # writing more than strictly demanded.
        new_overflow = max(0, self.data_bytes - self.memory_bytes)
        if new_overflow > 0:
            to_write = min(total, int(new_overflow * 1.0))
            stolen = int(to_write * self.steal_factor)
            self._swap_out(stolen)

    def free_all(self, count: int, obj_bytes: int, workers: int = 1) -> None:
        """Deallocate object by object (the overhead Pangea's bulk
        page-drop avoids, paper Sec. 9.2.1)."""
        self.host.cpu.parallel(count * self.free_seconds, workers)
        self.data_bytes = max(0, self.data_bytes - count * obj_bytes)
        self.resident_bytes = min(self.resident_bytes, self.data_bytes)

    # ------------------------------------------------------------------
    # access patterns
    # ------------------------------------------------------------------

    def sequential_scan(self, compute_seconds_per_byte: float = 0.0, workers: int = 1) -> None:
        """One full sequential pass over the data.

        When the working set exceeds RAM, a loop-sequential scan under LRU
        misses on the overflow every pass (and page stealing writes dirty
        pages back even when re-reads would not require it).
        """
        overflow = self.overflow_bytes
        if overflow > 0:
            page_in = int(overflow * self.steal_factor)
            page_out = int(overflow * self.steal_factor)
            self._swap_out(page_out)
            self._swap_in(page_in)
        self.host.cpu.memcpy(self.data_bytes, workers)
        if compute_seconds_per_byte:
            self.host.cpu.parallel(self.data_bytes * compute_seconds_per_byte, workers)

    def random_touch(self, count: int, obj_bytes: int, workers: int = 1) -> None:
        """Random accesses: each touch faults with probability overflow/data."""
        if self.data_bytes <= 0:
            return
        fault_prob = self.overflow_bytes / self.data_bytes
        faults = int(count * fault_prob)
        if faults:
            # Each random fault swaps one 4KB page in (paying its own I/O
            # latency) and dirties another that must eventually swap out.
            self.stats.bytes_paged_in += faults * 4 * KB
            self.host.disks.read(faults * 4 * KB, num_ios=faults)
            self._swap_out(int(faults * 4 * KB * 0.5))
        self.host.cpu.parallel(count * 40e-9, workers)

    # ------------------------------------------------------------------
    # swap I/O
    # ------------------------------------------------------------------

    def _swap_out(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.stats.bytes_paged_out += nbytes
        self.host.disks.write(nbytes, num_ios=max(1, nbytes // self.swap_io_bytes))

    def _swap_in(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.stats.bytes_paged_in += nbytes
        self.host.disks.read(nbytes, num_ios=max(1, nbytes // self.swap_io_bytes))
