"""Layered-system baselines (the paper's comparison points).

Each baseline is a faithful *cost-model* implementation of a layered stack
running on the same simulated hardware as Pangea: it executes the same
workload state transitions (caches fill, pages swap, memory limits trip)
and charges exactly the architectural costs the paper attributes to
layering — serialization at every layer crossing, kernel/user and
client/server copies, redundant caching, JVM object expansion, waves of
tasks, and uncoordinated paging.
"""

from repro.baselines.alluxio import AlluxioOutOfMemoryError, AlluxioWorker
from repro.baselines.hdfs import HdfsCluster
from repro.baselines.host import BaselineHost
from repro.baselines.ignite import IgniteSegfaultError, IgniteSharedRdd
from repro.baselines.os_fs import OsFileSystem
from repro.baselines.os_vm import OsVirtualMemory
from repro.baselines.redis_kv import RedisOutOfMemoryError, RedisServer
from repro.baselines.spark import (
    SparkKMeans,
    SparkShuffleSim,
    SparkSystemReport,
    SparkTpchScheduler,
)
from repro.baselines.stl_map import StlUnorderedMap

__all__ = [
    "BaselineHost",
    "OsVirtualMemory",
    "OsFileSystem",
    "HdfsCluster",
    "AlluxioWorker",
    "AlluxioOutOfMemoryError",
    "IgniteSharedRdd",
    "IgniteSegfaultError",
    "RedisServer",
    "RedisOutOfMemoryError",
    "StlUnorderedMap",
    "SparkKMeans",
    "SparkShuffleSim",
    "SparkSystemReport",
    "SparkTpchScheduler",
]
