"""HDFS baseline (paper Fig. 8 and the Spark storage backend).

Models the Hadoop Distributed File System accessed through a native
client (libhdfs3, as the paper uses for fairness): files are 128MB
blocks, writes pipeline through ``replication`` datanodes, and every
transfer crosses two memory copies (client buffer ↔ socket ↔ datanode)
on top of the datanode's OS file system — the layering Pangea removes.
"""

from __future__ import annotations

from repro.baselines.host import BaselineHost
from repro.baselines.os_fs import OsFileSystem
from repro.sim.devices import MB

BLOCK_BYTES = 128 * MB


class HdfsCluster:
    """One namenode (metadata only) plus datanodes co-located with hosts."""

    def __init__(
        self,
        hosts: list[BaselineHost],
        replication: int = 1,
        datanode_cache_bytes: int | None = None,
        per_block_latency: float = 2e-3,
    ) -> None:
        if not hosts:
            raise ValueError("HDFS needs at least one datanode host")
        if replication < 1 or replication > len(hosts):
            raise ValueError("replication must be between 1 and the host count")
        self.hosts = hosts
        self.replication = replication
        self.per_block_latency = per_block_latency
        cache = datanode_cache_bytes or max(1, hosts[0].memory_bytes // 2)
        self._datanode_fs = [OsFileSystem(host, cache) for host in hosts]
        self._file_sizes: dict[str, int] = {}
        self._next_host = 0

    # ------------------------------------------------------------------
    # client operations (charged to the client's host)
    # ------------------------------------------------------------------

    def write(self, name: str, nbytes: int, client: BaselineHost, workers: int = 1) -> None:
        """Write a file: per-block pipeline through ``replication`` replicas."""
        if nbytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        self._file_sizes[name] = self._file_sizes.get(name, 0) + nbytes
        num_blocks = max(1, (nbytes + BLOCK_BYTES - 1) // BLOCK_BYTES)
        # Client-side copy into packet buffers plus the socket hop; only
        # replicas pipelined to *other* nodes cross the network.
        client.cpu.memcpy(nbytes, workers)
        remote_replicas = max(0, self.replication - 1) if len(self.hosts) > 1 else 0
        if remote_replicas:
            client.network.transfer(nbytes * remote_replicas, num_messages=num_blocks)
        client.clock.advance(num_blocks * self.per_block_latency)
        local = self._local_datanode(client)
        for replica_index in range(self.replication):
            datanode = (local + replica_index) % len(self.hosts)
            fs = self._datanode_fs[datanode]
            fs.host.cpu.memcpy(nbytes, workers)  # socket receive copy
            fs.write(f"{name}#r{replica_index}", nbytes, workers)
            fs.flush(f"{name}#r{replica_index}")
        self._sync_clocks(client)

    def read(self, name: str, nbytes: int, client: BaselineHost, workers: int = 1) -> None:
        """Read a file, preferring the replica co-located with the client.

        Spark's scheduler is locality-optimized, so reads usually hit the
        local datanode; the two socket copies remain even then (the
        short-circuit path still crosses the client/server boundary via
        the paper's measurement setup).
        """
        size = self._file_sizes.get(name)
        if size is None:
            raise KeyError(f"no HDFS file named {name!r}")
        if nbytes > size:
            raise ValueError(f"file {name!r} holds {size} bytes, cannot read {nbytes}")
        num_blocks = max(1, (nbytes + BLOCK_BYTES - 1) // BLOCK_BYTES)
        datanode = self._local_datanode(client)
        fs = self._datanode_fs[datanode]
        fs.read(f"{name}#r0", nbytes, workers)
        fs.host.cpu.memcpy(nbytes, workers)  # datanode → socket copy
        if fs.host is not client:
            client.network.transfer(nbytes, num_messages=num_blocks)
        client.cpu.memcpy(nbytes, workers)  # socket → client buffer copy
        client.clock.advance(num_blocks * self.per_block_latency)
        self._sync_pair(client, fs.host)

    def delete(self, name: str) -> None:
        self._file_sizes.pop(name, None)
        for replica_index in range(self.replication):
            for fs in self._datanode_fs:
                fs.delete(f"{name}#r{replica_index}")

    def file_bytes(self, name: str) -> int:
        return self._file_sizes.get(name, 0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _pick_datanode(self, replica_index: int) -> int:
        return (self._next_host + replica_index) % len(self.hosts)

    def _local_datanode(self, client: BaselineHost) -> int:
        for index, host in enumerate(self.hosts):
            if host is client:
                return index
        return self._pick_datanode(0)

    def _sync_pair(self, client: BaselineHost, datanode_host: BaselineHost) -> None:
        """The client blocks on its datanode (synchronous API)."""
        latest = max(client.clock.now, datanode_host.clock.now)
        client.clock.advance_to(latest)
        datanode_host.clock.advance_to(latest)

    def _sync_clocks(self, client: BaselineHost) -> None:
        """Client blocks on every participant (used by replicated writes)."""
        latest = max(
            [client.clock.now] + [fs.host.clock.now for fs in self._datanode_fs]
        )
        client.clock.advance_to(latest)
        for fs in self._datanode_fs:
            fs.host.clock.advance_to(latest)
