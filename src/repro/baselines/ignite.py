"""Apache Ignite SharedRDD baseline (paper Figs. 3-4).

Ignite stores data in fixed 16KB off-heap pages and is optimized for
random access and updates on mutable data; bulk analytics suffer from
(a) the hard 16KB page-size limit, (b) memory compaction to fight
fragmentation (the paper profiles ~40% of run time spent compacting), and
(c) a hard off-heap region limit — exceeding it segfaults (the paper's 2
billion point runs).
"""

from __future__ import annotations

from repro.baselines.host import BaselineHost
from repro.sim.devices import KB


class IgniteSegfaultError(RuntimeError):
    """The paper's observed failure mode when data exceeds the off-heap
    region: the Ignite process crashes with a segmentation fault."""


class IgniteSharedRdd:
    """One Ignite data region on a host."""

    PAGE_BYTES = 16 * KB

    def __init__(
        self,
        host: BaselineHost,
        heap_bytes: int,
        offheap_bytes: int,
        per_page_seconds: float = 4e-6,
        compaction_fraction: float = 0.40,
        per_object_seconds: float = 0.5e-6,
    ) -> None:
        self.host = host
        self.heap_bytes = heap_bytes
        self.offheap_bytes = offheap_bytes
        self.per_page_seconds = per_page_seconds
        self.compaction_fraction = compaction_fraction
        self.per_object_seconds = per_object_seconds
        self.used_bytes = 0
        self._datasets: dict[str, int] = {}

    def _charge_with_compaction(self, seconds: float, workers: int = 1) -> None:
        """Compaction steals a fixed fraction of total processing time."""
        inflated = seconds / (1.0 - self.compaction_fraction)
        self.host.cpu.parallel(inflated, workers)

    def write(
        self, name: str, nbytes: int, num_objects: int = 1, workers: int = 1
    ) -> None:
        if nbytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        if self.used_bytes + nbytes > self.offheap_bytes:
            raise IgniteSegfaultError(
                f"off-heap region overflow: {self.used_bytes + nbytes} > "
                f"{self.offheap_bytes} bytes (the paper observed a segfault here)"
            )
        pages = max(1, nbytes // self.PAGE_BYTES)
        serialize = nbytes / self.host.cpu.serialize_bandwidth
        page_mgmt = pages * self.per_page_seconds
        objects = num_objects * self.per_object_seconds
        self._charge_with_compaction(serialize + page_mgmt + objects, workers)
        self._datasets[name] = self._datasets.get(name, 0) + nbytes
        self.used_bytes += nbytes

    def read(
        self, name: str, nbytes: int, num_objects: int = 1, workers: int = 1
    ) -> None:
        stored = self._datasets.get(name)
        if stored is None:
            raise KeyError(f"no Ignite dataset named {name!r}")
        if nbytes > stored:
            raise ValueError(f"dataset {name!r} holds {stored} bytes")
        pages = max(1, nbytes // self.PAGE_BYTES)
        deserialize = nbytes / self.host.cpu.deserialize_bandwidth
        page_mgmt = pages * self.per_page_seconds
        objects = num_objects * self.per_object_seconds
        self._charge_with_compaction(deserialize + page_mgmt + objects, workers)

    def delete(self, name: str) -> None:
        nbytes = self._datasets.pop(name, 0)
        self.used_bytes -= nbytes

    @property
    def total_memory_bytes(self) -> int:
        """Heap plus configured off-heap (what Fig. 4 accounts)."""
        return self.heap_bytes + self.offheap_bytes
