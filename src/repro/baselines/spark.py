"""Spark-like layered engine baselines (paper Figs. 3-5, Tab. 3).

Three pieces:

* :class:`SparkKMeans` — the k-means driver over a layered stack
  (Spark executors on top of HDFS, Alluxio, or Ignite), with the unified
  storage/execution memory pool, JVM object expansion in the RDD cache,
  per-point (de)serialization costs, waves-of-tasks overhead, and
  re-loading of uncached partitions every iteration.
* :class:`SparkShuffleSim` — the paper's "simulated Spark shuffling
  written in C++": per-(core, partition) spill files on the OS file
  system, one ``malloc`` + ``fwrite`` per object.
* :class:`SparkTpchScheduler` — a query scheduler that cannot see Pangea
  replicas: every query reloads its inputs from HDFS (with serialization
  and copies) and every join repartitions at runtime.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.baselines.alluxio import AlluxioOutOfMemoryError, AlluxioWorker
from repro.baselines.hdfs import HdfsCluster
from repro.baselines.host import BaselineHost
from repro.baselines.ignite import IgniteSegfaultError, IgniteSharedRdd
from repro.baselines.os_fs import OsFileSystem
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.sim.profiles import MachineProfile

#: Logical bytes per k-means point (matches repro.ml.kmeans).
POINT_BYTES = 120
POINT_WITH_NORM_BYTES = 128

#: JVM per-point cost on the load path: deserialization + object creation
#: + GC pressure.  Calibrated to the paper's Spark-over-HDFS init (146 s
#: for 1B points on 10 workers).
JVM_LOAD_SECONDS_PER_POINT = 8.0e-6
#: JVM per-point cost per k-means iteration (paper: 14 s / iteration).
JVM_ASSIGN_SECONDS_PER_POINT = 1.1e-6
#: RDD-cache expansion: raw bytes -> Java object bytes.
JAVA_OBJECT_EXPANSION = 1.35
#: Fraction of executor memory available to the unified pool.
UNIFIED_POOL_FRACTION = 0.68
#: Driver-side cost of scheduling one task in a wave.
TASK_SCHEDULE_SECONDS = 2.0e-3
SPLIT_BYTES = 256 * MB


@dataclass
class SparkSystemReport:
    """What one layered-system run produced (Figs. 3-4 rows)."""

    system: str
    init_seconds: float = 0.0
    iteration_seconds: list = field(default_factory=list)
    memory_bytes: int = 0
    failed: bool = False
    failure: str = ""

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + sum(self.iteration_seconds)


class SparkKMeans:
    """k-means over Spark + {HDFS, Alluxio, Ignite} (Fig. 3 comparators)."""

    def __init__(
        self,
        num_nodes: int = 10,
        profile: MachineProfile | None = None,
        backend: str = "hdfs",
        memory_budget: int = 50 * GB,
        alluxio_memory: int = 15 * GB,
        ignite_heap: int = 5 * GB,
        ignite_offheap: int = 30 * GB,
        workers_per_node: int = 8,
    ) -> None:
        if backend not in ("hdfs", "alluxio", "ignite"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.num_nodes = num_nodes
        self.workers = workers_per_node
        self.profile = profile or MachineProfile.r4_2xlarge()
        self.hosts = [BaselineHost(self.profile, i) for i in range(num_nodes)]
        if backend == "hdfs":
            self.executor_memory = memory_budget
            self.hdfs = HdfsCluster(self.hosts, replication=1)
            self.alluxio = None
            self.ignite = None
        elif backend == "alluxio":
            self.executor_memory = memory_budget - alluxio_memory
            self.hdfs = None
            self.alluxio = [AlluxioWorker(h, alluxio_memory) for h in self.hosts]
            self.ignite = None
        else:
            self.executor_memory = memory_budget - ignite_heap - ignite_offheap
            self.hdfs = None
            self.alluxio = None
            self.ignite = [
                IgniteSharedRdd(h, ignite_heap, ignite_offheap) for h in self.hosts
            ]
        self.pool_bytes = int(self.executor_memory * UNIFIED_POOL_FRACTION)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _barrier(self) -> float:
        latest = max(h.clock.now for h in self.hosts)
        for host in self.hosts:
            host.clock.advance_to(latest)
        return latest

    def _preload_input(self, bytes_per_node: int, points_per_node: float) -> None:
        """Stage the input in the backend (not part of the timed run)."""
        if self.hdfs is not None:
            # Create the HDFS file records without charging time: the data
            # was ingested by an earlier job.
            self.hdfs._file_sizes["points"] = bytes_per_node * self.num_nodes
            for i, fs in enumerate(self.hdfs._datanode_fs):
                fs._touch("points#r0").total_bytes = bytes_per_node
        elif self.alluxio is not None:
            for worker in self.alluxio:
                if bytes_per_node > worker.memory_bytes:
                    raise AlluxioOutOfMemoryError(
                        f"input of {bytes_per_node} bytes/node exceeds the "
                        f"{worker.memory_bytes}-byte Alluxio worker"
                    )
                worker._file_bytes["points"] = bytes_per_node
                worker.used_bytes += bytes_per_node
        else:
            for shared in self.ignite:
                expanded = int(bytes_per_node * JAVA_OBJECT_EXPANSION)
                if expanded > shared.offheap_bytes:
                    raise IgniteSegfaultError(
                        f"{expanded} bytes/node exceed the "
                        f"{shared.offheap_bytes}-byte off-heap region"
                    )
                shared._datasets["points"] = bytes_per_node
                shared.used_bytes += expanded

    def _read_backend(self, host_index: int, nbytes: int, num_objects: int) -> None:
        host = self.hosts[host_index]
        if self.hdfs is not None:
            self.hdfs.read("points", nbytes, client=host, workers=self.workers)
        elif self.alluxio is not None:
            self.alluxio[host_index].read(
                "points", nbytes, num_objects=1, workers=self.workers
            )
        else:
            self.ignite[host_index].read(
                "points", nbytes, num_objects=1, workers=self.workers
            )

    def _charge_waves(self, bytes_per_node: int) -> None:
        """Driver-side scheduling of one wave of tasks over all splits."""
        num_tasks = max(1, bytes_per_node * self.num_nodes // SPLIT_BYTES)
        self.hosts[0].clock.advance(num_tasks * TASK_SCHEDULE_SECONDS)

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------

    def run(self, num_points: int, iterations: int = 5) -> SparkSystemReport:
        """Run k-means over ``num_points`` logical points."""
        report = SparkSystemReport(system=f"spark-{self.backend}")
        points_per_node = num_points / self.num_nodes
        input_bytes = int(points_per_node * POINT_BYTES)
        norms_bytes = int(points_per_node * POINT_WITH_NORM_BYTES)
        try:
            self._preload_input(input_bytes, points_per_node)
        except (AlluxioOutOfMemoryError, IgniteSegfaultError) as exc:
            report.failed = True
            report.failure = str(exc)
            report.memory_bytes = self._memory_accounting(0)
            return report

        # --- initialization: load + deserialize + norms + cache ---------
        start = self._barrier()
        for index, host in enumerate(self.hosts):
            self._read_backend(index, input_bytes, int(points_per_node))
            host.cpu.parallel(
                points_per_node * JVM_LOAD_SECONDS_PER_POINT, self.workers
            )
        self._charge_waves(input_bytes)
        after_init = self._barrier()
        report.init_seconds = after_init - start

        # --- cache accounting -------------------------------------------
        needed = int((input_bytes + norms_bytes) * JAVA_OBJECT_EXPANSION)
        cached_fraction = min(1.0, self.pool_bytes / needed) if needed else 1.0
        report.memory_bytes = self._memory_accounting(min(needed, self.pool_bytes))

        # --- iterations ---------------------------------------------------
        for _ in range(iterations):
            iter_start = self._barrier()
            reload_fraction = 1.0 - cached_fraction
            for index, host in enumerate(self.hosts):
                host.cpu.parallel(
                    points_per_node * JVM_ASSIGN_SECONDS_PER_POINT, self.workers
                )
                if reload_fraction > 0:
                    self._read_backend(
                        index,
                        int(input_bytes * reload_fraction),
                        int(points_per_node * reload_fraction),
                    )
                    host.cpu.parallel(
                        points_per_node
                        * reload_fraction
                        * JVM_LOAD_SECONDS_PER_POINT,
                        self.workers,
                    )
                # Reduce step: tiny per-cluster partials over the network.
                host.network.transfer(10 * (POINT_BYTES + 16))
            self._charge_waves(norms_bytes)
            report.iteration_seconds.append(self._barrier() - iter_start)
        return report

    def _memory_accounting(self, executor_used: int) -> int:
        """Total cluster memory the stack occupies (Fig. 4)."""
        per_node = executor_used
        if self.alluxio is not None:
            per_node += self.alluxio[0].used_bytes
        if self.ignite is not None:
            per_node += self.ignite[0].total_memory_bytes
        if self.hdfs is not None:
            # OS buffer cache double-holds the HDFS blocks read.
            per_node += min(
                self.hosts[0].memory_bytes // 4,
                self.hdfs.file_bytes("points") // self.num_nodes,
            )
        return per_node * self.num_nodes


class SparkShuffleSim:
    """The paper's C++-simulated Spark shuffle (Tab. 3 comparator).

    Each of ``num_workers`` writer threads keeps one spill file per
    partition (``num_workers × num_partitions`` files total), allocates
    every object with ``malloc`` and appends it with ``fwrite`` through
    the OS buffer cache.
    """

    def __init__(
        self,
        host: BaselineHost,
        num_workers: int = 4,
        num_partitions: int = 4,
        cache_bytes: int | None = None,
        per_object_write_seconds: float = 420e-9,
        per_object_read_seconds: float = 100e-9,
    ) -> None:
        self.host = host
        self.num_workers = num_workers
        self.num_partitions = num_partitions
        self.fs = OsFileSystem(host, cache_bytes or host.memory_bytes * 3 // 4)
        self.per_object_write_seconds = per_object_write_seconds
        self.per_object_read_seconds = per_object_read_seconds

    def file_name(self, worker: int, partition: int) -> str:
        return f"shuffle_w{worker}_p{partition}"

    @property
    def num_files(self) -> int:
        return self.num_workers * self.num_partitions

    def write(self, bytes_per_thread: int, obj_bytes: int = 10) -> float:
        """All writers emit their data, hashed over the partitions."""
        start = self.host.clock.now
        objects_per_thread = bytes_per_thread // obj_bytes
        self.host.cpu.parallel(
            objects_per_thread * self.num_workers * self.per_object_write_seconds,
            self.num_workers,
        )
        share = bytes_per_thread // self.num_partitions
        for worker in range(self.num_workers):
            for partition in range(self.num_partitions):
                self.fs.write(self.file_name(worker, partition), share)
        return self.host.clock.now - start

    def read(self, bytes_per_thread: int, obj_bytes: int = 10) -> float:
        """Each reader drains one partition across every writer's file."""
        start = self.host.clock.now
        objects_per_thread = bytes_per_thread // obj_bytes
        self.host.cpu.parallel(
            objects_per_thread * self.num_workers * self.per_object_read_seconds,
            self.num_workers,
        )
        share = bytes_per_thread // self.num_partitions
        for partition in range(self.num_partitions):
            for worker in range(self.num_workers):
                self.fs.read(self.file_name(worker, partition), share)
        return self.host.clock.now - start

    def cleanup(self) -> None:
        for worker in range(self.num_workers):
            for partition in range(self.num_partitions):
                self.fs.delete(self.file_name(worker, partition))


class SparkTpchScheduler(QueryScheduler):
    """TPC-H on Spark over HDFS (Fig. 5 comparator).

    Differences from the Pangea scheduler:

    * no replica selection — there is nothing analogous to
      pre-partitioning when loading from HDFS, so joins repartition at
      query time;
    * every scan pays the HDFS load path (disk + two copies +
      deserialization into JVM objects) because a DataFrame application
      reloads its inputs;
    * shuffles serialize and deserialize every record and write
      ``cores × partitions`` spill files;
    * all CPU work carries a JVM overhead factor.
    """

    def __init__(
        self,
        cluster,
        jvm_cpu_factor: float = 2.5,
        load_seconds_per_byte: float = 1.0 / (300 * MB),
        shuffle_serde_seconds_per_byte: float = 1.0 / (250 * MB),
        cores_per_node: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(cluster, **kwargs)
        self.jvm_cpu_factor = jvm_cpu_factor
        self.load_seconds_per_byte = load_seconds_per_byte
        self.shuffle_serde_seconds_per_byte = shuffle_serde_seconds_per_byte
        self.cores_per_node = cores_per_node

    def _copartitioned_replicas(self, join, left_base, right_base):
        return None  # Spark cannot reuse Pangea's physical organizations.

    def _exec_scan(self, scan, steps, replica=None):
        dataset = self.cluster.get_set(scan.set_name)
        for node_id in sorted(dataset.shards):
            shard = dataset.shards[node_id]
            nbytes = shard.logical_bytes
            node = shard.node
            node.disks.read(nbytes, num_ios=max(1, nbytes // (128 * MB)))
            node.cpu.memcpy(2 * nbytes, workers=self.cores_per_node)
            node.cpu.parallel(
                nbytes * self.load_seconds_per_byte, self.cores_per_node
            )
        self.cluster.barrier()
        result = super()._exec_scan(scan, steps, replica=None)
        self._charge_jvm_factor_on_stage(result)
        return result

    def _shuffle(self, stage, key_fn):
        # Serialize on the way out, deserialize on the way in, and pay the
        # many-files penalty.
        total_bytes = stage.total_records() * self.object_bytes
        for node_id, records in stage.per_node.items():
            node = self.cluster.nodes[node_id]
            nbytes = len(records) * self.object_bytes
            node.cpu.parallel(
                2 * nbytes * self.shuffle_serde_seconds_per_byte,
                self.cores_per_node,
            )
        num_files = self.cores_per_node * self.cluster.num_nodes
        self.cluster.nodes[0].clock.advance(num_files * 1e-3)
        del total_bytes
        return super()._shuffle(stage, key_fn)

    def _charge_jvm_factor_on_stage(self, stage) -> None:
        extra = self.jvm_cpu_factor - 1.0
        if extra <= 0:
            return
        for node_id, records in stage.per_node.items():
            node = self.cluster.nodes[node_id]
            node.cpu.per_object(len(records), workers=self.cores_per_node, factor=extra)
