"""STL unordered_map baseline (paper Tab. 4).

An in-process hash map using the default general-purpose allocator over
OS virtual memory.  Its per-entry overhead (bucket pointers, chain nodes,
allocator headers) is worse than the Memcached slab allocator Pangea
embeds in its hash pages, so it starts swapping at 200M keys where Pangea
only starts spilling at 300M — and random probes against swap thrash.
"""

from __future__ import annotations

from repro.baselines.host import BaselineHost
from repro.baselines.os_vm import OsVirtualMemory


class StlUnorderedMap:
    """Cost model of ``std::unordered_map<std::string, int>``."""

    def __init__(
        self,
        host: BaselineHost,
        memory_bytes: int | None = None,
        per_entry_bytes: int = 88,
        per_op_seconds: float = 0.9e-6,
        rehash_factor: float = 1.6,
    ) -> None:
        self.host = host
        self.vm = OsVirtualMemory(host, memory_bytes or host.memory_bytes)
        #: chain node (32) + key SSO buffer spill (24) + bucket share + padding
        self.per_entry_bytes = per_entry_bytes
        self.per_op_seconds = per_op_seconds
        #: amortized growth: rehashing moves every entry ~0.6 extra times
        self.rehash_factor = rehash_factor
        self.num_keys = 0

    def insert_ops(self, count: int, new_keys: int, workers: int = 1) -> None:
        """Apply ``count`` aggregate operations, ``new_keys`` of them inserts."""
        if count < 0 or new_keys < 0 or new_keys > count:
            raise ValueError("bad operation counts")
        self.num_keys += new_keys
        self.host.cpu.parallel(
            count * self.per_op_seconds * self.rehash_factor, workers
        )
        if new_keys:
            self.vm.malloc_objects(new_keys, self.per_entry_bytes, workers)
        # Every operation probes a random bucket: faults against swap when
        # the table has outgrown RAM.
        self.vm.random_touch(count, self.per_entry_bytes, workers)

    @property
    def needed_bytes(self) -> int:
        return self.num_keys * self.per_entry_bytes

    def clear(self, workers: int = 1) -> None:
        self.vm.free_all(self.num_keys, self.per_entry_bytes, workers)
        self.num_keys = 0
