"""Alluxio baseline (paper Figs. 3, 4, 7): an in-memory file system layer.

Data written to Alluxio is serialized into the worker's memory over a
client/worker boundary; reads copy back out and deserialize.  The worker
cannot hold more data than its configured memory — the paper notes
"Alluxio doesn't support writing more data than its configured memory
size", which is why Alluxio lines stop early in Fig. 7.
"""

from __future__ import annotations

from repro.baselines.host import BaselineHost


class AlluxioOutOfMemoryError(MemoryError):
    """Write would exceed the Alluxio worker's configured memory."""


class AlluxioWorker:
    """One Alluxio worker process co-located with a host."""

    def __init__(
        self,
        host: BaselineHost,
        memory_bytes: int,
        per_object_seconds: float = 0.4e-6,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("Alluxio worker memory must be positive")
        self.host = host
        self.memory_bytes = memory_bytes
        #: Java client per-object overhead (the paper's NIO ByteBuffer
        #: client is 3× faster than the JNI C++ one; this models the fast one).
        self.per_object_seconds = per_object_seconds
        self._file_bytes: dict[str, int] = {}
        self.used_bytes = 0

    def write(
        self, name: str, nbytes: int, num_objects: int = 1, workers: int = 1
    ) -> None:
        """Serialize + copy ``nbytes`` into worker memory."""
        if nbytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        if self.used_bytes + nbytes > self.memory_bytes:
            raise AlluxioOutOfMemoryError(
                f"Alluxio worker has {self.memory_bytes - self.used_bytes} free "
                f"bytes; cannot write {nbytes}"
            )
        self.host.cpu.serialize(nbytes, workers)
        self.host.cpu.memcpy(nbytes, workers)  # client → worker copy
        self.host.cpu.parallel(num_objects * self.per_object_seconds, workers)
        self._file_bytes[name] = self._file_bytes.get(name, 0) + nbytes
        self.used_bytes += nbytes

    def read(
        self, name: str, nbytes: int, num_objects: int = 1, workers: int = 1
    ) -> None:
        """Copy out of worker memory + deserialize on the client."""
        stored = self._file_bytes.get(name)
        if stored is None:
            raise KeyError(f"no Alluxio file named {name!r}")
        if nbytes > stored:
            raise ValueError(f"file {name!r} holds {stored} bytes, cannot read {nbytes}")
        self.host.cpu.memcpy(nbytes, workers)  # worker → client copy
        self.host.cpu.deserialize(nbytes, workers)
        self.host.cpu.parallel(num_objects * self.per_object_seconds, workers)

    def delete(self, name: str) -> None:
        """Bulk removal is cheap (data is organized in large blocks)."""
        nbytes = self._file_bytes.pop(name, 0)
        self.used_bytes -= nbytes

    def file_bytes(self, name: str) -> int:
        return self._file_bytes.get(name, 0)
