"""Redis baseline (paper Tab. 4).

Redis is a client/server store: every operation crosses a socket, and the
computation cannot run on local data — the architectural cost the paper
blames for Redis losing to the in-process Pangea hash map by up to 30×.
Past the memory limit the server thrashes against swap; well past it, it
fails (the paper's 300M-key run).
"""

from __future__ import annotations

from repro.baselines.host import BaselineHost
from repro.sim.devices import KB


class RedisOutOfMemoryError(MemoryError):
    """The server cannot grow further (paper: 'failed')."""


class RedisServer:
    """A single-node Redis with pipelined clients."""

    def __init__(
        self,
        host: BaselineHost,
        memory_bytes: int | None = None,
        per_op_seconds: float = 1.0e-6,
        per_entry_bytes: int = 104,
        fault_seconds: float = 150e-6,
        fail_over_factor: float = 2.0,
    ) -> None:
        self.host = host
        self.memory_bytes = memory_bytes or host.memory_bytes
        #: Amortized pipelined round trip + command parsing + reply.
        self.per_op_seconds = per_op_seconds
        #: Redis entry overhead: SDS header, dictEntry, robj, jemalloc bins.
        self.per_entry_bytes = per_entry_bytes
        self.fault_seconds = fault_seconds
        self.fail_over_factor = fail_over_factor
        self.num_keys = 0

    @property
    def needed_bytes(self) -> int:
        return self.num_keys * self.per_entry_bytes

    def _fault_probability(self) -> float:
        if self.needed_bytes <= self.memory_bytes:
            return 0.0
        return 1.0 - self.memory_bytes / self.needed_bytes

    def execute_ops(self, count: int, new_keys: int = 0, workers: int = 1) -> None:
        """Run ``count`` SET/INCR-style commands, ``new_keys`` of them new."""
        if count < 0 or new_keys < 0 or new_keys > count:
            raise ValueError("bad operation counts")
        self.num_keys += new_keys
        if self.needed_bytes > self.memory_bytes * self.fail_over_factor:
            raise RedisOutOfMemoryError(
                f"Redis needs {self.needed_bytes} bytes against "
                f"{self.memory_bytes} of RAM; the server is killed"
            )
        self.host.cpu.parallel(count * self.per_op_seconds, workers)
        num_faults = int(count * self._fault_probability())
        if num_faults:
            # Each fault swaps one 4KB page in; the per-I/O latency is the
            # dominant cost (this is what fault_seconds calibrates).
            self.host.disks.read(num_faults * 4 * KB, num_ios=num_faults)

    def flush_all(self) -> None:
        self.num_keys = 0
