"""OS file system baseline (paper Fig. 8 and the simulated Spark shuffle).

Models buffered file I/O through the kernel page cache: every read and
write crosses the kernel/user boundary with a memory copy (the overhead
Pangea's shared-memory direct-I/O path avoids), the cache holds recently
used file bytes with LRU eviction, and dirty bytes are written back when
the cache overflows or on flush.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CachedFile:
    total_bytes: int = 0
    cached_bytes: int = 0
    dirty_bytes: int = 0


@dataclass
class FsStats:
    disk_bytes_written: int = 0
    disk_bytes_read: int = 0
    cache_hits_bytes: int = 0
    cache_miss_bytes: int = 0

    def reset(self) -> None:
        self.disk_bytes_written = 0
        self.disk_bytes_read = 0
        self.cache_hits_bytes = 0
        self.cache_miss_bytes = 0


class OsFileSystem:
    """Files over a kernel buffer cache of ``cache_bytes``."""

    def __init__(self, host, cache_bytes: int, io_chunk_bytes: int = 1 << 20) -> None:
        if cache_bytes <= 0:
            raise ValueError("buffer cache must have positive capacity")
        self.host = host
        self.cache_bytes = cache_bytes
        self.io_chunk_bytes = io_chunk_bytes
        self._files: "OrderedDict[str, CachedFile]" = OrderedDict()
        self.stats = FsStats()

    # ------------------------------------------------------------------
    # cache bookkeeping
    # ------------------------------------------------------------------

    @property
    def cached_total(self) -> int:
        return sum(f.cached_bytes for f in self._files.values())

    def _touch(self, name: str) -> CachedFile:
        handle = self._files.get(name)
        if handle is None:
            handle = CachedFile()
            self._files[name] = handle
        else:
            self._files.move_to_end(name)
        return handle

    def _make_room(self, nbytes: int) -> None:
        """Evict least-recently-used file bytes; write back dirty ones."""
        needed = self.cached_total + nbytes - self.cache_bytes
        if needed <= 0:
            return
        for name in list(self._files):
            if needed <= 0:
                break
            victim = self._files[name]
            evict = min(victim.cached_bytes, needed)
            if evict <= 0:
                continue
            if victim.cached_bytes > 0 and victim.dirty_bytes > 0:
                dirty_share = min(
                    victim.dirty_bytes,
                    int(evict * victim.dirty_bytes / victim.cached_bytes) + 1,
                )
                self._disk_write(dirty_share)
                victim.dirty_bytes -= dirty_share
            victim.cached_bytes -= evict
            needed -= evict

    # ------------------------------------------------------------------
    # file operations
    # ------------------------------------------------------------------

    def write(self, name: str, nbytes: int, workers: int = 1) -> None:
        """Buffered write: user→kernel copy, cache insert, lazy writeback."""
        if nbytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        handle = self._touch(name)
        self.host.cpu.memcpy(nbytes, workers)
        self._make_room(nbytes)
        room = self.cache_bytes - (self.cached_total)
        cached_now = min(nbytes, max(0, room))
        spilled_now = nbytes - cached_now
        handle.total_bytes += nbytes
        handle.cached_bytes += cached_now
        handle.dirty_bytes += cached_now
        if spilled_now > 0:
            self._disk_write(spilled_now)

    def read(self, name: str, nbytes: int, workers: int = 1) -> None:
        """Buffered read: kernel→user copy plus disk for the uncached part."""
        handle = self._touch(name)
        if nbytes > handle.total_bytes:
            raise ValueError(
                f"file {name!r} holds {handle.total_bytes} bytes, "
                f"cannot read {nbytes}"
            )
        hit_fraction = (
            handle.cached_bytes / handle.total_bytes if handle.total_bytes else 1.0
        )
        hit = int(nbytes * hit_fraction)
        miss = nbytes - hit
        self.stats.cache_hits_bytes += hit
        self.stats.cache_miss_bytes += miss
        if miss > 0:
            self._disk_read(miss)
            self._make_room(miss)
            room = self.cache_bytes - self.cached_total
            handle.cached_bytes += min(miss, max(0, room))
        self.host.cpu.memcpy(nbytes, workers)

    def flush(self, name: str) -> None:
        """fsync: force dirty bytes to disk."""
        handle = self._files.get(name)
        if handle is None or handle.dirty_bytes <= 0:
            return
        self._disk_write(handle.dirty_bytes)
        handle.dirty_bytes = 0

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def file_bytes(self, name: str) -> int:
        handle = self._files.get(name)
        return handle.total_bytes if handle else 0

    # ------------------------------------------------------------------
    # device charging
    # ------------------------------------------------------------------

    def _disk_write(self, nbytes: int) -> None:
        self.stats.disk_bytes_written += nbytes
        self.host.disks.write(nbytes, num_ios=max(1, nbytes // self.io_chunk_bytes))

    def _disk_read(self, nbytes: int) -> None:
        self.stats.disk_bytes_read += nbytes
        self.host.disks.read(nbytes, num_ios=max(1, nbytes // self.io_chunk_bytes))
