"""The per-node user-level file system."""

from __future__ import annotations

from repro.fs.page_file import SetFile
from repro.sim.devices import DiskArray


class PangeaNodeFS:
    """All Pangea data files on one worker node.

    The file system shares the node's disks with every locality set and
    performs direct I/O — the OS buffer cache is bypassed entirely, which is
    why Pangea's reads avoid the kernel-to-user copy the OS file system
    baseline pays (paper Secs. 4 and 9.2.1).
    """

    def __init__(self, disks: DiskArray, owner: "object | None" = None) -> None:
        self.disks = disks
        #: The worker node this FS lives on; threaded through to each
        #: SetFile for retry-policy, robustness-counter, and fault access.
        self.owner = owner
        self._files: dict[str, SetFile] = {}

    def create_file(self, set_name: str) -> SetFile:
        if set_name in self._files:
            raise ValueError(f"a file for set {set_name!r} already exists")
        handle = SetFile(set_name, self.disks, owner=self.owner)
        self._files[set_name] = handle
        return handle

    def get_file(self, set_name: str) -> SetFile:
        try:
            return self._files[set_name]
        except KeyError:
            raise KeyError(f"no file for set {set_name!r} on this node") from None

    def drop_file(self, set_name: str) -> None:
        handle = self._files.pop(set_name, None)
        if handle is not None:
            handle.truncate()

    def __contains__(self, set_name: str) -> bool:
        return set_name in self._files

    @property
    def num_files(self) -> int:
        return len(self._files)

    @property
    def bytes_on_disk(self) -> int:
        return sum(f.bytes_on_disk for f in self._files.values())
