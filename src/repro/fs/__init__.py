"""Pangea's user-level distributed file system (paper Sec. 4).

Each worker node runs a user-level file system that buffers all reads and
writes through the node's unified buffer pool and talks to the disks with
direct I/O (no OS page cache).  A distributed file instance is one Pangea
data file plus one meta file per node; the data file's pages can be spread
over multiple disk drives.
"""

from repro.fs.node_fs import PangeaNodeFS
from repro.fs.page_file import PageLocation, SetFile

__all__ = ["PangeaNodeFS", "SetFile", "PageLocation"]
