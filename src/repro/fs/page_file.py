"""Per-node Pangea data files and meta files."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.devices import DiskArray


@dataclass(frozen=True)
class PageLocation:
    """One meta-file entry: where a page image lives on this node's disks."""

    page_id: int
    disk_index: int
    offset: int
    nbytes: int


class SetFile:
    """The on-disk image of one locality set on one node.

    Pages are assigned to disk drives round-robin (each page's image is
    contiguous on one drive, per the paper's per-drive physical files); the
    *cost* of a transfer is charged through the striped
    :class:`~repro.sim.devices.DiskArray`, which models the aggregate
    bandwidth concurrent workers get from multiple drives.

    Unlike DBMIN's files, a locality set may have only a fraction (or none)
    of its pages on disk: transient sets only write images for pages that
    were actually spilled.
    """

    def __init__(self, set_name: str, disks: DiskArray, direct_io: bool = True) -> None:
        self.set_name = set_name
        self.disks = disks
        self.direct_io = direct_io
        self._payloads: dict[int, list] = {}
        self._meta: dict[int, PageLocation] = {}
        self._next_disk = 0
        self._disk_heads = [0] * disks.num_disks

    # ------------------------------------------------------------------
    # data-file operations (all charge simulated disk time)
    # ------------------------------------------------------------------

    def write_page(self, page_id: int, records: list, nbytes: int) -> float:
        """Persist one page image; returns the simulated seconds charged."""
        existing = self._meta.get(page_id)
        if existing is None:
            disk_index = self._next_disk
            self._next_disk = (self._next_disk + 1) % self.disks.num_disks
            location = PageLocation(
                page_id=page_id,
                disk_index=disk_index,
                offset=self._disk_heads[disk_index],
                nbytes=nbytes,
            )
            self._disk_heads[disk_index] += nbytes
            self._meta[page_id] = location
        self._payloads[page_id] = list(records)
        return self.disks.write(nbytes, num_ios=1)

    def read_page(self, page_id: int) -> tuple[list, float]:
        """Load one page image; returns (records, simulated seconds)."""
        if page_id not in self._payloads:
            raise KeyError(
                f"set {self.set_name!r} has no on-disk image for page {page_id}"
            )
        nbytes = self._meta[page_id].nbytes
        cost = self.disks.read(nbytes, num_ios=1)
        return list(self._payloads[page_id]), cost

    def contains(self, page_id: int) -> bool:
        return page_id in self._payloads

    def location(self, page_id: int) -> PageLocation:
        """Meta-file lookup (no data transfer)."""
        return self._meta[page_id]

    def drop_page(self, page_id: int) -> None:
        self._payloads.pop(page_id, None)
        self._meta.pop(page_id, None)

    def truncate(self) -> None:
        """Remove all page images (set deletion is a metadata operation)."""
        self._payloads.clear()
        self._meta.clear()
        self._disk_heads = [0] * self.disks.num_disks

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self._payloads)

    @property
    def bytes_on_disk(self) -> int:
        return sum(loc.nbytes for loc in self._meta.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetFile({self.set_name!r}, pages={self.num_pages}, "
            f"bytes={self.bytes_on_disk})"
        )
