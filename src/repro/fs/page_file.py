"""Per-node Pangea data files and meta files.

Beyond the paper's layout (per-drive physical files, round-robin page
placement), this layer carries the robustness machinery a production
storage manager needs:

* every page image stores an end-to-end checksum in its meta-file entry;
  :meth:`SetFile.read_page` verifies it and raises
  :class:`~repro.sim.faults.PageCorruptionError` on mismatch;
* transient disk faults (injected through the
  :class:`~repro.sim.devices.DiskArray` fault hook) are absorbed by a
  bounded retry-with-backoff loop that charges simulated time;
* dropped page extents are recycled through per-disk free lists so
  long-lived transient sets do not grow their disk offsets unboundedly.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, replace

from repro.sim.devices import DiskArray
from repro.sim.faults import PageCorruptionError, RetryPolicy, TransientDiskError
from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import WorkerNode


def page_checksum(records: list) -> int:
    """Order-sensitive 64-bit checksum of a page payload.

    Built from :func:`repro.util.stable_hash` so it is reproducible across
    processes (Python's ``hash`` is randomized per process).
    """
    acc = 0xCBF29CE484222325
    for record in records:
        acc = ((acc ^ stable_hash(repr(record))) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


#: Sentinel injected into corrupted payloads; never equal to a user record.
CORRUPTION_SENTINEL = "__PANGEA_CORRUPTED__"


@dataclass(frozen=True)
class PageLocation:
    """One meta-file entry: where a page image lives on this node's disks.

    ``nbytes`` is the logical image size; ``extent_bytes`` is the size of
    the disk extent backing it (>= ``nbytes`` when a recycled extent was
    larger than the image).  ``checksum`` is verified on every read.
    """

    page_id: int
    disk_index: int
    offset: int
    nbytes: int
    checksum: int = 0
    extent_bytes: int = 0

    @property
    def allocated_bytes(self) -> int:
        return self.extent_bytes or self.nbytes


class SetFile:
    """The on-disk image of one locality set on one node.

    Pages are assigned to disk drives round-robin (each page's image is
    contiguous on one drive, per the paper's per-drive physical files); the
    *cost* of a transfer is charged through the striped
    :class:`~repro.sim.devices.DiskArray`, which models the aggregate
    bandwidth concurrent workers get from multiple drives.

    Unlike DBMIN's files, a locality set may have only a fraction (or none)
    of its pages on disk: transient sets only write images for pages that
    were actually spilled.
    """

    def __init__(
        self,
        set_name: str,
        disks: DiskArray,
        direct_io: bool = True,
        owner: "WorkerNode | None" = None,
    ) -> None:
        self.set_name = set_name
        self.disks = disks
        self.direct_io = direct_io
        #: The worker node this file lives on (None for standalone use);
        #: gives access to the node's retry policy, robustness counters,
        #: and fault injector.
        self.owner = owner
        self._payloads: dict[int, list] = {}
        self._meta: dict[int, PageLocation] = {}
        self._next_disk = 0
        self._disk_heads = [0] * disks.num_disks
        #: Per-disk free extents ``(offset, size)`` from dropped pages,
        #: reused before the disk head is advanced.
        self._free_extents: list[list[tuple[int, int]]] = [
            [] for _ in range(disks.num_disks)
        ]

    # ------------------------------------------------------------------
    # retry plumbing
    # ------------------------------------------------------------------

    def _retry_policy(self) -> RetryPolicy:
        if self.owner is not None and self.owner.retry_policy is not None:
            return self.owner.retry_policy
        return RetryPolicy()

    def _with_retries(self, op) -> float:
        """Run one disk operation, absorbing transient faults.

        Each failed attempt charges exponential backoff to the disk clock;
        the bound comes from the owning node's :class:`RetryPolicy`.  The
        returned cost includes the backoff seconds.
        """
        policy = self._retry_policy()
        attempt = 0
        backoff_total = 0.0
        while True:
            try:
                return op() + backoff_total
            except TransientDiskError:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                if self.owner is not None:
                    self.owner.robustness.retries += 1
                seconds = policy.backoff(attempt - 1)
                clock = self.disks.disks[0].clock
                if clock is not None:
                    clock.advance(seconds)
                backoff_total += seconds

    # ------------------------------------------------------------------
    # extent management
    # ------------------------------------------------------------------

    def _allocate_extent(self, nbytes: int) -> tuple[int, int, int]:
        """Pick (disk_index, offset, extent_bytes), reusing freed extents."""
        disk_index = self._next_disk
        self._next_disk = (self._next_disk + 1) % self.disks.num_disks
        free = self._free_extents[disk_index]
        for i, (offset, size) in enumerate(free):
            if size >= nbytes:
                free.pop(i)
                leftover = size - nbytes
                if leftover > 0:
                    free.append((offset + nbytes, leftover))
                return disk_index, offset, nbytes
        offset = self._disk_heads[disk_index]
        self._disk_heads[disk_index] += nbytes
        return disk_index, offset, nbytes

    def _release_extent(self, location: PageLocation) -> None:
        disk_index = location.disk_index
        extent = location.allocated_bytes
        if location.offset + extent == self._disk_heads[disk_index]:
            # The extent sits at the top of the allocated region: give the
            # space straight back to the disk head.
            self._disk_heads[disk_index] = location.offset
            return
        self._free_extents[disk_index].append((location.offset, extent))

    def assert_extent_accounting(self) -> None:
        """Verify disk-space accounting: every byte below each disk head is
        covered by exactly one live or free extent, with no overlaps."""
        for disk_index in range(self.disks.num_disks):
            spans = [
                (loc.offset, loc.allocated_bytes, f"page {loc.page_id}")
                for loc in self._meta.values()
                if loc.disk_index == disk_index
            ]
            spans.extend(
                (offset, size, "free")
                for offset, size in self._free_extents[disk_index]
            )
            spans.sort()
            covered = 0
            for (o1, s1, w1), (o2, _s2, w2) in zip(spans, spans[1:]):
                if o1 + s1 > o2:
                    raise AssertionError(
                        f"set {self.set_name!r} disk {disk_index}: extents "
                        f"{w1} and {w2} overlap ([{o1}, {o1 + s1}) vs {o2})"
                    )
            covered = sum(s for _o, s, _w in spans)
            head = self._disk_heads[disk_index]
            if covered != head:
                raise AssertionError(
                    f"set {self.set_name!r} disk {disk_index}: extents cover "
                    f"{covered} bytes but the disk head is at {head}"
                )

    # ------------------------------------------------------------------
    # data-file operations (all charge simulated disk time)
    # ------------------------------------------------------------------

    def write_page(self, page_id: int, records: list, nbytes: int) -> float:
        """Persist one page image; returns the simulated seconds charged.

        The image's checksum is computed before the write and stored in the
        meta file, so corruption of the stored image (injected or modeled)
        is detected end-to-end on the next read.
        """
        checksum = page_checksum(records)
        existing = self._meta.get(page_id)
        if existing is not None and existing.allocated_bytes >= nbytes:
            location = replace(
                existing,
                nbytes=nbytes,
                checksum=checksum,
                extent_bytes=existing.allocated_bytes,
            )
        else:
            if existing is not None:
                self._release_extent(existing)
            disk_index, offset, extent = self._allocate_extent(nbytes)
            location = PageLocation(
                page_id=page_id,
                disk_index=disk_index,
                offset=offset,
                nbytes=nbytes,
                checksum=checksum,
                extent_bytes=extent,
            )
        self._meta[page_id] = location
        self._payloads[page_id] = list(records)
        cost = self._with_retries(lambda: self.disks.write(nbytes, num_ios=1))
        if self.owner is not None and self.owner.fault_injector is not None:
            if self.owner.fault_injector.should_corrupt(
                self.set_name, self.owner, page_id
            ):
                self.corrupt_image(page_id)
        return cost

    def write_many(self, entries: "list[tuple[int, list, int]]") -> float:
        """Persist several page images with one coalesced disk transfer.

        ``entries`` is a list of ``(page_id, records, nbytes)`` triples.
        Checksums, extent allocation, and meta-file bookkeeping are
        identical to calling :meth:`write_page` per page; only the disk
        charge differs — one striped sequential write covering every
        image (one seek) via :meth:`DiskArray.write_many
        <repro.sim.devices.DiskArray.write_many>` instead of one
        operation per page.  Used by the batched victim-flush path.
        """
        if not entries:
            return 0.0
        if len(entries) == 1:
            page_id, records, nbytes = entries[0]
            return self.write_page(page_id, records, nbytes)
        sizes = []
        for page_id, records, nbytes in entries:
            checksum = page_checksum(records)
            existing = self._meta.get(page_id)
            if existing is not None and existing.allocated_bytes >= nbytes:
                location = replace(
                    existing,
                    nbytes=nbytes,
                    checksum=checksum,
                    extent_bytes=existing.allocated_bytes,
                )
            else:
                if existing is not None:
                    self._release_extent(existing)
                disk_index, offset, extent = self._allocate_extent(nbytes)
                location = PageLocation(
                    page_id=page_id,
                    disk_index=disk_index,
                    offset=offset,
                    nbytes=nbytes,
                    checksum=checksum,
                    extent_bytes=extent,
                )
            self._meta[page_id] = location
            self._payloads[page_id] = list(records)
            sizes.append(nbytes)
        cost = self._with_retries(lambda: self.disks.write_many(sizes))
        if self.owner is not None and self.owner.fault_injector is not None:
            for page_id, _records, _nbytes in entries:
                if self.owner.fault_injector.should_corrupt(
                    self.set_name, self.owner, page_id
                ):
                    self.corrupt_image(page_id)
        return cost

    def read_page(self, page_id: int) -> tuple[list, float]:
        """Load and verify one page image; returns (records, seconds).

        Raises :class:`PageCorruptionError` when the stored image fails its
        checksum — the buffer layer's read-repair path catches this and
        restores the page from a surviving replica.
        """
        if page_id not in self._payloads:
            raise KeyError(
                f"set {self.set_name!r} has no on-disk image for page {page_id}"
            )
        location = self._meta[page_id]
        cost = self._with_retries(
            lambda: self.disks.read(location.nbytes, num_ios=1)
        )
        payload = list(self._payloads[page_id])
        if page_checksum(payload) != location.checksum:
            if self.owner is not None:
                self.owner.robustness.corruptions_detected += 1
            where = (
                f" on node {self.owner.node_id}" if self.owner is not None else ""
            )
            raise PageCorruptionError(
                f"checksum mismatch for page {page_id} of set "
                f"{self.set_name!r}{where}: the on-disk image is corrupt"
            )
        return payload, cost

    def peek_records(self, page_id: int) -> list:
        """Surviving on-disk records of one page, metadata-side.

        This is the public accessor the recovery and safety layers use to
        consult a shard's object index without charging data I/O (the
        manager already holds this metadata); it performs no checksum
        verification and never fails — a missing image yields ``[]``.
        """
        return list(self._payloads.get(page_id, []))

    def corrupt_image(self, page_id: int) -> None:
        """Corrupt the stored image of one page (fault injection only).

        The meta-file checksum is left at the value of the original
        payload, so the next :meth:`read_page` detects the damage.
        """
        payload = self._payloads.get(page_id)
        if payload is None:
            raise KeyError(
                f"set {self.set_name!r} has no on-disk image for page {page_id}"
            )
        if payload:
            payload[len(payload) // 2] = CORRUPTION_SENTINEL
        else:
            payload.append(CORRUPTION_SENTINEL)

    def contains(self, page_id: int) -> bool:
        return page_id in self._payloads

    def location(self, page_id: int) -> PageLocation:
        """Meta-file lookup (no data transfer)."""
        return self._meta[page_id]

    def drop_page(self, page_id: int) -> None:
        self._payloads.pop(page_id, None)
        location = self._meta.pop(page_id, None)
        if location is not None:
            self._release_extent(location)

    def truncate(self) -> None:
        """Remove all page images (set deletion is a metadata operation)."""
        self._payloads.clear()
        self._meta.clear()
        self._disk_heads = [0] * self.disks.num_disks
        self._free_extents = [[] for _ in range(self.disks.num_disks)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return len(self._payloads)

    @property
    def bytes_on_disk(self) -> int:
        return sum(loc.nbytes for loc in self._meta.values())

    @property
    def free_extent_bytes(self) -> int:
        """Recyclable space from dropped pages (not yet reused)."""
        return sum(
            size for extents in self._free_extents for _offset, size in extents
        )

    @property
    def disk_head_bytes(self) -> int:
        """Total high-water mark across the disks (allocation footprint)."""
        return sum(self._disk_heads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetFile({self.set_name!r}, pages={self.num_pages}, "
            f"bytes={self.bytes_on_disk})"
        )
